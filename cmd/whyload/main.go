// Command whyload is the why-query load generator: it discovers a running
// whydbd's datasets and built-in queries, replays a mix of explain and match
// requests at a target concurrency, and reports throughput (RPS) and latency
// percentiles (p50/p95/p99) — the repo's end-to-end service numbers.
//
// Usage:
//
//	whyload -addr http://127.0.0.1:8080 -mix mixed -concurrency 8 -duration 10s
//	whyload -addr http://127.0.0.1:8091 -mix explain -requests 200 -out summary.json
//	whyload -addr http://127.0.0.1:8091 -mix stream -requests 200 -out stream.json
//	whyload -addr http://127.0.0.1:8092 -mix chaos -concurrency 16 -duration 60s
//
// The request corpus is derived from GET /v1/datasets: per dataset, every
// built-in query yields a why-empty explain (its failing variant), a
// bounded explain (why-so-many against a tight interval), a count match,
// and a find match. -mix selects explain ops, match ops, or both; "stream"
// replays the explain corpus through POST /v1/explain/stream (SSE) and
// additionally reports anytime latency — time to first explanation (ttfeMs:
// first `improvement` event) and time to converged (ttconvergedMs: the
// `done` event) — the numbers that justify the streaming transport; "chaos"
// replays the mixed corpus as an overload rehearsal — a saturating burst for
// 60% of the run, then a single-worker trickle that lets the daemon's
// brownout controller recover — and tolerates the daemon's documented
// overload answers (shedding, expiry, injected faults) while still failing
// on anything unexplained.
//
// Outcomes are classified by the v1 envelope's error code (shed, injected,
// deadline_*, ...), falling back to HTTP status against pre-envelope
// servers. Overload answers and dead connections are retried:
// shed/draining/shard_unavailable (429/503) back off exponentially with
// jitter (honoring Retry-After) up to -retries attempts; exhausted retries
// are counted (shedExhausted / injectedExhausted / transport), not treated
// as unexplained failures. Degraded explains (`degraded: true`) are counted
// and must carry their quality bound; with -allow-partial, partial answers
// (`partial: true`) are counted and must carry their per-shard coverage map.
//
// whyload exits non-zero if any request failed hard (transport error,
// malformed JSON, unexplained non-2xx, or a degraded explain missing its
// bound), so a CI smoke run fails loudly; -allow-errors downgrades that to
// a report line.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/retry"
	"repro/internal/wire"
)

type job struct {
	kind string // "explain" | "match" | "stream"
	body []byte
}

// path maps the job kind to its endpoint (the stream kind is an explain
// body answered over SSE, the batch kind a BatchExplainRequest).
func (j job) path() string {
	switch j.kind {
	case "stream":
		return "/v1/explain/stream"
	case "batch":
		return "/v1/explain/batch"
	case "mutate":
		return "/v1/graph/mutate"
	}
	return "/v1/" + j.kind
}

// class is one request's final classification after retries.
type class int

const (
	clsOK class = iota
	// clsInjected is a fault-injected hard error (marked `injected` by the
	// daemon): explained, counted, not a service defect.
	clsInjected
	// clsExpired is a 504 — the request ran out of time queued or running.
	// Chaos runs treat expiry as an explained overload answer; other mixes
	// count it as an error.
	clsExpired
	// clsShedExhausted gave up after -retries 429s: the server kept
	// shedding, which is correct overload behavior.
	clsShedExhausted
	// clsInjectedExhausted gave up after -retries injected 503s.
	clsInjectedExhausted
	// clsTransport is a connection-level failure after retries: dial refused,
	// or the peer died mid-exchange (a 5xx status line whose body never
	// arrived, or arrived as a non-JSON half-answer). Chaos runs treat it as
	// an explained casualty of the drill — distinct from an unexplained 5xx
	// the daemon actually composed; other mixes count it as an error.
	clsTransport
	// clsError is a hard failure: malformed JSON, unexplained non-2xx, a
	// degraded explain without its bound, or a partial answer without its
	// coverage map.
	clsError
)

// sample is one job's outcome. ttfe and ttconverged are stream-only anytime
// latencies (zero when the stream produced no improvement / did not finish).
// items/itemErrors/itemOverload are batch-only: items the answered batch
// carried, items carrying a hard error envelope, and items carrying a
// documented overload answer (shed, deadline, injected, shard loss) — the
// latter tolerated in chaos runs, errors elsewhere.
type sample struct {
	kind            string
	lat             time.Duration
	class           class
	status          int
	retries         int
	degraded        bool
	missingBound    bool
	partial         bool
	missingCoverage bool
	ttfe            time.Duration
	ttconverged     time.Duration
	items           int
	itemErrors      int
	itemOverload    int
}

// kindStats aggregates one request kind's outcomes.
type kindStats struct {
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	P50Ms     float64 `json:"p50Ms"`
	P95Ms     float64 `json:"p95Ms"`
	P99Ms     float64 `json:"p99Ms"`
	MaxMs     float64 `json:"maxMs"`
	MeanMs    float64 `json:"meanMs"`
	latencies []time.Duration
}

// latQuantiles summarizes one anytime-latency distribution (stream mix).
type latQuantiles struct {
	P50Ms float64 `json:"p50Ms"`
	P95Ms float64 `json:"p95Ms"`
	P99Ms float64 `json:"p99Ms"`
	MaxMs float64 `json:"maxMs"`
	Count int     `json:"count"`
}

func quantiles(lats []time.Duration) *latQuantiles {
	if len(lats) == 0 {
		return nil
	}
	q := &latQuantiles{Count: len(lats)}
	q.P50Ms, q.P95Ms, q.P99Ms, q.MaxMs = percentiles(lats)
	return q
}

// summary is the machine-readable run report (-out, uploaded as a CI
// artifact). Kernel carries the daemon's post-run search-kernel counters
// per dataset and explanation family, and Resilience the daemon's brownout
// state and overload counters, both read from GET /v1/stats.
type summary struct {
	Target      string               `json:"target"`
	Mix         string               `json:"mix"`
	Concurrency int                  `json:"concurrency"`
	Requests    int                  `json:"requests"`
	Errors      int                  `json:"errors"`
	DurationMs  float64              `json:"durationMs"`
	RPS         float64              `json:"rps"`
	P50Ms       float64              `json:"p50Ms"`
	P95Ms       float64              `json:"p95Ms"`
	P99Ms       float64              `json:"p99Ms"`
	MaxMs       float64              `json:"maxMs"`
	MeanMs      float64              `json:"meanMs"`
	PerKind     map[string]kindStats `json:"perKind"`

	// Overload and fault accounting (see the class comments).
	Retries                int `json:"retries"`
	Shed                   int `json:"shed"`
	ShedExhausted          int `json:"shedExhausted"`
	Injected               int `json:"injected"`
	InjectedExhausted      int `json:"injectedExhausted"`
	Expired                int `json:"expired"`
	Transport              int `json:"transport"`
	Degraded               int `json:"degraded"`
	DegradedMissingBound   int `json:"degradedMissingBound"`
	Partial                int `json:"partial"`
	PartialMissingCoverage int `json:"partialMissingCoverage"`
	Unexplained5xx         int `json:"unexplained5xx"`
	CorpusSkipped          int `json:"corpusSkipped"`

	// Anytime latency of the stream mix: time from request start to the
	// first improvement event (TTFE) and to the done event (converged).
	TTFEMs        *latQuantiles `json:"ttfeMs,omitempty"`
	TTConvergedMs *latQuantiles `json:"ttconvergedMs,omitempty"`

	// Batch accounting (batch jobs in the mix): batches sent, items carried,
	// item-level hard errors and tolerated overload answers, effective
	// item throughput, and per-item latency percentiles (each item observes
	// its enclosing batch's wall latency — the time a batched caller waits
	// for that answer).
	Batches           int           `json:"batches,omitempty"`
	BatchItems        int           `json:"batchItems,omitempty"`
	BatchItemErrors   int           `json:"batchItemErrors,omitempty"`
	BatchItemOverload int           `json:"batchItemOverload,omitempty"`
	ItemRPS           float64       `json:"itemRps,omitempty"`
	PerItemMs         *latQuantiles `json:"perItemMs,omitempty"`

	Kernel     map[string]map[string]wire.KernelCounters `json:"kernel,omitempty"`
	Resilience *wire.ResilienceStats                     `json:"resilience,omitempty"`
	// Speculation and Coalescing mirror the daemon's post-run fleet-serving
	// counters: the server-wide speculation budget's utilization and each
	// dataset's cross-request singleflight stampede counters.
	Speculation *wire.SpeculationPoolStats      `json:"speculation,omitempty"`
	Coalescing  map[string]wire.CoalescingStats `json:"coalescing,omitempty"`
	// Shards carries each sharded dataset's shard-group health from the
	// daemon's post-run stats: breaker states, retry/hedge counters, and how
	// many partial answers the coordinator served.
	Shards map[string]*wire.ShardingStats `json:"shards,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "whydbd base URL")
	mix := flag.String("mix", "mixed", "request mix: explain, match, mixed, stream, or chaos")
	concurrency := flag.Int("concurrency", 8, "concurrent request workers")
	requests := flag.Int("requests", 0, "total requests to send (0 = run for -duration)")
	duration := flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
	budget := flag.Int("budget", 150, "explanation candidate budget per explain request")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	retries := flag.Int("retries", 3, "max retries per request on 429/503")
	retryBase := flag.Duration("retry-base", 100*time.Millisecond, "initial retry backoff")
	retryMax := flag.Duration("retry-max", 2*time.Second, "retry backoff cap")
	seed := flag.Int64("seed", 1, "backoff-jitter seed")
	out := flag.String("out", "", "write the JSON summary to this file")
	allowErrors := flag.Bool("allow-errors", false, "exit 0 even when requests failed")
	allowPartial := flag.Bool("allow-partial", false, "set allowPartial on every request: a sharded daemon may answer from surviving shards")
	mutateFrac := flag.Float64("mutate-frac", 0, "fraction of the corpus that is graph mutations (mixed/chaos only; sharded datasets are skipped)")
	batchSize := flag.Int("batch-size", 8, "items per /v1/explain/batch request (batch and chaos mixes)")
	dupFrac := flag.Float64("dup-frac", 0.5, "fraction of each batch's items duplicating its first item (cross-request coalescing pressure)")
	flag.Parse()
	chaos := *mix == "chaos"
	switch *mix {
	case "explain", "match", "mixed", "stream", "batch", "chaos":
	default:
		fmt.Fprintf(os.Stderr, "unknown mix %q (want explain, match, mixed, stream, batch, or chaos)\n", *mix)
		os.Exit(2)
	}
	if *concurrency < 1 {
		*concurrency = 1
	}
	if *batchSize < 1 || *dupFrac < 0 || *dupFrac > 1 {
		fmt.Fprintln(os.Stderr, "whyload: -batch-size must be >= 1 and -dup-frac in [0, 1]")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	corpusMix := *mix
	if chaos {
		corpusMix = "mixed"
	}
	if *mix == "batch" {
		corpusMix = "explain"
	}
	jobs, skipped, err := buildJobs(client, *addr, corpusMix, *budget, *allowPartial)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whyload: %v\n", err)
		os.Exit(1)
	}
	if len(jobs) == 0 {
		fmt.Fprintln(os.Stderr, "whyload: the daemon serves no datasets")
		os.Exit(1)
	}
	if *mix == "batch" {
		jobs = batchJobs(jobs, *batchSize, *dupFrac)
	}
	if chaos {
		// The overload drill also carries fleet traffic: every fourth explain
		// replays over SSE, and duplicate-heavy batches ride along so batching
		// and coalescing face the same epoch swaps and brownouts as singles.
		nExplain := 0
		for i := range jobs {
			if jobs[i].kind == "explain" {
				if nExplain%4 == 3 {
					jobs[i].kind = "stream"
				}
				nExplain++
			}
		}
		bjs := batchJobs(jobs, *batchSize, *dupFrac)
		if max := len(jobs)/4 + 1; len(bjs) > max {
			bjs = bjs[:max]
		}
		jobs = interleave(jobs, bjs)
	}
	if *mutateFrac < 0 || *mutateFrac >= 1 {
		fmt.Fprintln(os.Stderr, "whyload: -mutate-frac must be in [0, 1)")
		os.Exit(2)
	}
	if *mutateFrac > 0 {
		if *mix != "mixed" && !chaos {
			fmt.Fprintln(os.Stderr, "whyload: -mutate-frac wants -mix mixed or chaos")
			os.Exit(2)
		}
		mj, err := mutateJobs(client, *addr, *mutateFrac, len(jobs))
		if err != nil {
			fmt.Fprintf(os.Stderr, "whyload: %v\n", err)
			os.Exit(1)
		}
		if len(mj) == 0 {
			fmt.Fprintln(os.Stderr, "whyload: -mutate-frac set but every dataset is sharded; no mutations sent")
		}
		jobs = interleave(jobs, mj)
	}

	perWorker := make([][]sample, *concurrency)
	var next, totalRetries atomic.Int64
	deadline := time.Now().Add(*duration)
	// Chaos: saturate for 60% of the run, then trickle from one worker so
	// the brownout controller's recovery is observable before the run ends.
	burstDeadline := time.Now().Add(*duration * 6 / 10)
	// The trickle is dense enough (150ms) that the controller's step-down
	// windows — shedding → degraded → healthy, each gated by its exit
	// hold — see several admission and completion samples.
	const trickleGap = 150 * time.Millisecond
	useCount := *requests > 0
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			policy := retry.New(*retries, *retryBase, *retryMax, *seed+int64(w))
			for {
				i := next.Add(1) - 1
				if useCount {
					if int(i) >= *requests {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				if chaos && time.Now().After(burstDeadline) {
					if w != 0 {
						return
					}
					time.Sleep(trickleGap)
				}
				j := jobs[int(i)%len(jobs)]
				perWorker[w] = append(perWorker[w], doJob(client, *addr, j, policy, &totalRetries))
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summary{
		Target:        *addr,
		Mix:           *mix,
		Concurrency:   *concurrency,
		DurationMs:    float64(elapsed.Nanoseconds()) / 1e6,
		PerKind:       map[string]kindStats{},
		CorpusSkipped: skipped,
		Retries:       int(totalRetries.Load()),
	}
	var all, ttfes, ttconvs, perItem []time.Duration
	var mean time.Duration
	for _, ws := range perWorker {
		for _, s := range ws {
			sum.Requests++
			ks := sum.PerKind[s.kind]
			ks.Requests++
			if s.kind == "batch" {
				sum.Batches++
				sum.BatchItems += s.items
				hard, tolerated := s.itemErrors, s.itemOverload
				if !chaos {
					// Outside chaos an overloaded item is as wrong as any
					// other failed item, mirroring normalize().
					hard, tolerated = hard+tolerated, 0
				}
				sum.BatchItemErrors += hard
				sum.BatchItemOverload += tolerated
				for n := s.items - hard - tolerated; n > 0; n-- {
					perItem = append(perItem, s.lat)
				}
			}
			if s.degraded {
				sum.Degraded++
			}
			if s.missingBound {
				sum.DegradedMissingBound++
			}
			if s.partial {
				sum.Partial++
			}
			if s.missingCoverage {
				sum.PartialMissingCoverage++
			}
			wasTransport := s.class == clsTransport
			if wasTransport {
				sum.Transport++
			}
			s.class = normalize(s.class, chaos)
			switch s.class {
			case clsInjected:
				sum.Injected++
			case clsExpired:
				sum.Expired++
			case clsShedExhausted:
				sum.Shed += s.retries
				sum.ShedExhausted++
			case clsInjectedExhausted:
				sum.InjectedExhausted++
			}
			if s.class == clsError {
				sum.Errors++
				ks.Errors++
				// A transport casualty never had a daemon-composed body to
				// explain itself with — it is not an unexplained 5xx.
				if !wasTransport && s.status >= 500 && s.status != http.StatusGatewayTimeout {
					sum.Unexplained5xx++
				}
			} else {
				all = append(all, s.lat)
				mean += s.lat
				ks.latencies = append(ks.latencies, s.lat)
				if s.ttfe > 0 {
					ttfes = append(ttfes, s.ttfe)
				}
				if s.ttconverged > 0 {
					ttconvs = append(ttconvs, s.ttconverged)
				}
			}
			sum.PerKind[s.kind] = ks
		}
	}
	sum.TTFEMs, sum.TTConvergedMs = quantiles(ttfes), quantiles(ttconvs)
	sum.PerItemMs = quantiles(perItem)
	sum.RPS = float64(sum.Requests) / elapsed.Seconds()
	if sum.BatchItems > 0 {
		sum.ItemRPS = float64(sum.BatchItems) / elapsed.Seconds()
	}
	sum.P50Ms, sum.P95Ms, sum.P99Ms, sum.MaxMs = percentiles(all)
	if len(all) > 0 {
		sum.MeanMs = float64(mean.Nanoseconds()) / 1e6 / float64(len(all))
	}
	for kind, ks := range sum.PerKind {
		var km time.Duration
		for _, l := range ks.latencies {
			km += l
		}
		ks.P50Ms, ks.P95Ms, ks.P99Ms, ks.MaxMs = percentiles(ks.latencies)
		if n := len(ks.latencies); n > 0 {
			ks.MeanMs = float64(km.Nanoseconds()) / 1e6 / float64(n)
		}
		ks.latencies = nil
		sum.PerKind[kind] = ks
	}

	if stats := fetchStats(client, *addr); stats != nil {
		sum.Kernel = make(map[string]map[string]wire.KernelCounters, len(stats.Datasets))
		for name, ds := range stats.Datasets {
			sum.Kernel[name] = ds.Kernel
			if ds.Sharding != nil {
				if sum.Shards == nil {
					sum.Shards = map[string]*wire.ShardingStats{}
				}
				sum.Shards[name] = ds.Sharding
			}
			if ds.Coalescing.Waits > 0 || ds.Coalescing.Shared > 0 {
				if sum.Coalescing == nil {
					sum.Coalescing = map[string]wire.CoalescingStats{}
				}
				sum.Coalescing[name] = ds.Coalescing
			}
		}
		sum.Resilience = stats.Resilience
		sum.Speculation = stats.Speculation
	}

	fmt.Printf("whyload: %s mix against %s, %d workers\n", sum.Mix, sum.Target, sum.Concurrency)
	fmt.Printf("  %d requests in %.2fs → %.1f req/s, %d errors\n", sum.Requests, elapsed.Seconds(), sum.RPS, sum.Errors)
	fmt.Printf("  latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f mean=%.2f\n", sum.P50Ms, sum.P95Ms, sum.P99Ms, sum.MaxMs, sum.MeanMs)
	for _, kind := range sortedKinds(sum.PerKind) {
		ks := sum.PerKind[kind]
		fmt.Printf("  %-8s %5d requests, %d errors, p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			kind, ks.Requests, ks.Errors, ks.P50Ms, ks.P95Ms, ks.P99Ms, ks.MaxMs)
	}
	if q := sum.TTFEMs; q != nil {
		fmt.Printf("  anytime ms: ttfe p50=%.2f p99=%.2f max=%.2f (%d streams)", q.P50Ms, q.P99Ms, q.MaxMs, q.Count)
		if c := sum.TTConvergedMs; c != nil {
			fmt.Printf(", converged p50=%.2f p99=%.2f", c.P50Ms, c.P99Ms)
		}
		fmt.Println()
	}
	if sum.Batches > 0 {
		fmt.Printf("  batch: %d batches carrying %d items (%d item errors, %d item overload), %.1f items/s",
			sum.Batches, sum.BatchItems, sum.BatchItemErrors, sum.BatchItemOverload, sum.ItemRPS)
		if q := sum.PerItemMs; q != nil {
			fmt.Printf(", per-item p50=%.2f p99=%.2f max=%.2f", q.P50Ms, q.P99Ms, q.MaxMs)
		}
		fmt.Println()
	}
	if sum.Retries+sum.Degraded+sum.Injected+sum.Expired+sum.Transport+sum.Partial+sum.ShedExhausted+sum.InjectedExhausted+sum.CorpusSkipped > 0 {
		fmt.Printf("  overload: %d retries, %d degraded (%d missing bound), %d partial (%d missing coverage), %d injected (%d exhausted), %d expired, %d shed-exhausted, %d transport, %d corpus-skipped\n",
			sum.Retries, sum.Degraded, sum.DegradedMissingBound, sum.Partial, sum.PartialMissingCoverage, sum.Injected, sum.InjectedExhausted, sum.Expired, sum.ShedExhausted, sum.Transport, sum.CorpusSkipped)
	}
	if rs := sum.Resilience; rs != nil {
		fmt.Printf("  resilience: state=%s shed=%d queueFull=%d expired=%d/%d degradedServed=%d panics=%d transitions=%v\n",
			rs.State, rs.Shed, rs.QueueFull, rs.ExpiredQueued, rs.ExpiredRunning, rs.DegradedServed, rs.Panics, rs.Transitions)
	}
	if sp := sum.Speculation; sp != nil {
		fmt.Printf("  speculation: pool=%d/%d granted=%d denied=%d returned=%d\n",
			sp.Size, sp.Capacity, sp.Granted, sp.Denied, sp.Returned)
	}
	for _, ds := range sortedCoalesceDatasets(sum.Coalescing) {
		c := sum.Coalescing[ds]
		fmt.Printf("  coalesce %-7s waits=%d shared=%d\n", ds, c.Waits, c.Shared)
	}
	for _, ds := range sortedKernelDatasets(sum.Kernel) {
		families := sum.Kernel[ds]
		line := fmt.Sprintf("  kernel %-7s", ds)
		for _, fam := range []string{"relax", "modtree", "mcs"} {
			c := families[fam]
			line += fmt.Sprintf(" %s %dx/%dh/%dw", fam, c.Executions, c.DedupHits, c.SpecWaste)
		}
		fmt.Println(line)
	}
	for _, ds := range sortedShardDatasets(sum.Shards) {
		sh := sum.Shards[ds]
		fmt.Printf("  shards %-7s mode=%s n=%d partialServed=%d\n", ds, sh.Mode, sh.NumShards, sh.PartialServed)
		for _, st := range sh.Shards {
			fmt.Printf("    %-10s [%d,%d) breaker=%s consec=%d req=%d fail=%d retries=%d hedges=%d won=%d opened=%d closed=%d\n",
				st.Name, st.Lo, st.Hi, st.Breaker, st.ConsecFailures, st.Requests, st.Failures, st.Retries,
				st.HedgesLaunched, st.HedgesWon, st.BreakerOpened, st.BreakerClosed)
		}
	}
	if *out != "" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "whyload: writing summary: %v\n", err)
			os.Exit(1)
		}
	}
	if (sum.Errors > 0 || sum.BatchItemErrors > 0 || sum.DegradedMissingBound > 0 || sum.PartialMissingCoverage > 0) && !*allowErrors {
		os.Exit(1)
	}
}

// batchJobs wraps the corpus' explain bodies into /v1/explain/batch jobs.
// Each batch anchors on one distinct spec: ceil(dupFrac·size) items repeat
// the anchor (the coalescing pressure a duplicate-heavy fleet workload
// exerts), and the rest walk the remaining specs round-robin, so every
// batch still carries distinct work. Bodies are spliced as raw JSON — the
// specs were marshaled once when the corpus was built.
func batchJobs(corpus []job, size int, dupFrac float64) []job {
	var specs []json.RawMessage
	for _, j := range corpus {
		if j.kind == "explain" {
			specs = append(specs, json.RawMessage(j.body))
		}
	}
	if len(specs) == 0 {
		return nil
	}
	dups := int(math.Ceil(dupFrac * float64(size)))
	if dups > size {
		dups = size
	}
	next := 0
	out := make([]job, 0, len(specs))
	for a := range specs {
		items := make([]json.RawMessage, 0, size)
		for d := 0; d < dups && len(items) < size; d++ {
			items = append(items, specs[a])
		}
		for len(items) < size {
			items = append(items, specs[next%len(specs)])
			next++
		}
		body, err := json.Marshal(struct {
			Items []json.RawMessage `json:"items"`
		}{items})
		if err != nil {
			continue
		}
		out = append(out, job{kind: "batch", body: body})
	}
	return out
}

func sortedCoalesceDatasets(m map[string]wire.CoalescingStats) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// normalize maps overload classes to hard errors outside chaos runs: a
// plain smoke run has no business expiring, exhausting retries, or losing
// connections, so those outcomes must fail it; a chaos run expects them.
func normalize(c class, chaos bool) class {
	if chaos {
		return c
	}
	switch c {
	case clsExpired, clsShedExhausted, clsInjectedExhausted, clsTransport:
		return clsError
	default:
		return c
	}
}

// result is one HTTP attempt's parsed outcome. code is the envelope's
// structured error code when the server sent one; empty against pre-envelope
// servers, where the classifier falls back to the HTTP status.
type result struct {
	status          int
	code            wire.ErrorCode
	transport       bool // connection-level failure; status kept when the line arrived
	badJSON         bool
	injected        bool
	streamDead      bool // SSE error event or truncated stream: don't retry
	degraded        bool
	missingBound    bool
	partial         bool
	missingCoverage bool
	retryAfter      time.Duration
	ttfe            time.Duration
	ttconverged     time.Duration
	items           int // batch answers: items carried
	itemErrors      int // items with a hard error envelope
	itemOverload    int // items with a documented overload answer
}

// retriable reports whether this attempt is a documented overload answer the
// policy should back off and retry: by code shed/draining (and injected
// faults surfacing as 503), by status 429/503 against pre-envelope servers.
func (res result) retriable() bool {
	if res.streamDead {
		return false
	}
	switch res.code {
	case wire.CodeShed, wire.CodeDraining, wire.CodeShardUnavailable:
		return true
	case wire.CodeInjected:
		return res.status == http.StatusServiceUnavailable
	case "":
		return res.status == http.StatusTooManyRequests || res.status == http.StatusServiceUnavailable
	}
	return false
}

// expired reports a request that ran out of time queued or running.
func (res result) expired() bool {
	switch res.code {
	case wire.CodeDeadlineQueued, wire.CodeDeadlineRunning:
		return true
	case "":
		return res.status == http.StatusGatewayTimeout
	}
	return false
}

// doJob runs one job to completion, retrying overload answers and dead
// connections under the policy. The sample's latency spans all attempts —
// the client-observed time to an answer.
func doJob(client *http.Client, addr string, j job, policy *retry.Policy, retries *atomic.Int64) sample {
	t0 := time.Now()
	s := sample{kind: j.kind}
	for attempt := 0; ; attempt++ {
		var res result
		if j.kind == "stream" {
			res = sendStream(client, addr+j.path(), j.body)
		} else {
			res = send(client, addr+j.path(), j.body, j.kind == "batch")
		}
		s.lat = time.Since(t0)
		s.status = res.status
		s.degraded = s.degraded || res.degraded
		s.missingBound = s.missingBound || res.missingBound
		s.partial = s.partial || res.partial
		s.missingCoverage = s.missingCoverage || res.missingCoverage
		switch {
		case res.badJSON:
			s.class = clsError
			return s
		case res.transport:
			// The connection died — possibly a daemon cycling mid-burst —
			// so it earns the same retry ladder as an overload answer.
			if attempt >= policy.Max {
				s.class = clsTransport
				s.retries = attempt
				return s
			}
			retries.Add(1)
			policy.Sleep(attempt, res.retryAfter)
		case res.status >= 200 && res.status < 300 && !res.streamDead:
			s.class = clsOK
			s.ttfe, s.ttconverged = res.ttfe, res.ttconverged
			s.items, s.itemErrors, s.itemOverload = res.items, res.itemErrors, res.itemOverload
			if res.missingBound || res.missingCoverage {
				// A degraded explain without its quality bound, or a partial
				// answer without its coverage map, is a contract violation,
				// not an overload answer.
				s.class = clsError
			}
			return s
		case res.retriable():
			if attempt >= policy.Max {
				if res.injected {
					s.class = clsInjectedExhausted
				} else {
					s.class = clsShedExhausted
				}
				s.retries = attempt
				return s
			}
			retries.Add(1)
			policy.Sleep(attempt, res.retryAfter)
		case res.expired():
			s.class = clsExpired
			return s
		case res.injected:
			s.class = clsInjected
			return s
		default:
			s.class = clsError
			return s
		}
	}
}

// parseError extracts the classifier's fields from a non-2xx (or SSE error
// event) body: the v1 envelope's structured error first, the legacy
// top-level shape as the fallback for pre-envelope servers.
func (res *result) parseError(blob []byte) {
	var env wire.Envelope
	if json.Unmarshal(blob, &env) == nil && env.Error != nil {
		res.code = env.Error.Code
		res.injected = env.Error.Injected
		if res.retryAfter == 0 && env.Error.RetryAfterMs > 0 {
			res.retryAfter = time.Duration(env.Error.RetryAfterMs) * time.Millisecond
		}
		return
	}
	var er wire.ErrorResponse
	if json.Unmarshal(blob, &er) == nil {
		res.injected = er.Injected
	}
}

// parseReport checks a 2xx explain/match body for degradation and partial
// markers. The body may be enveloped ({data: {...}}), spliced (-compat-v0),
// or bare (pre-envelope server, stream done event) — decodeBody handles all
// three; a body without the fields simply decodes with them absent.
func (res *result) parseReport(blob []byte) {
	var rep struct {
		Degraded     bool               `json:"degraded"`
		QualityBound *wire.QualityBound `json:"qualityBound"`
		Partial      bool               `json:"partial"`
		Coverage     map[string]bool    `json:"coverage"` // match answers carry it top-level
	}
	if decodeBody(blob, &rep) != nil {
		return
	}
	if rep.Degraded {
		res.degraded = true
		res.missingBound = rep.QualityBound == nil
	}
	if rep.Partial {
		res.partial = true
		covered := len(rep.Coverage) > 0 ||
			(rep.QualityBound != nil && len(rep.QualityBound.Coverage) > 0)
		res.missingCoverage = !covered
	}
}

// send posts one request and parses the pieces the classifier needs. batch
// answers carry per-item envelopes and are unpacked by parseBatch instead
// of the single-report markers.
func send(client *http.Client, url string, body []byte, batch bool) result {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return result{transport: true}
	}
	defer resp.Body.Close()
	res := result{status: resp.StatusCode}
	res.readRetryAfter(resp)
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		// The connection died mid-read: a transport casualty whatever the
		// status line promised, not an unexplained server answer.
		res.transport = true
		return res
	}
	if !json.Valid(blob) {
		if res.status >= 500 {
			// A 5xx with a non-JSON body is a dying peer's half-answer
			// (truncated envelope, proxy text) — transport, not a JSON bug.
			res.transport = true
		} else {
			res.badJSON = true
		}
		return res
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if batch {
			res.parseBatch(blob)
		} else {
			res.parseReport(blob)
		}
		return res
	}
	res.parseError(blob)
	return res
}

// parseBatch unpacks a 2xx /v1/explain/batch body: every item envelope is
// classified independently — data items run the single-answer contract
// checks (degraded bound, partial coverage), error items split into
// documented overload answers and hard failures.
func (res *result) parseBatch(blob []byte) {
	var batch wire.BatchExplainResponse
	if decodeBody(blob, &batch) != nil {
		res.badJSON = true
		return
	}
	res.items = len(batch.Items)
	for _, item := range batch.Items {
		switch {
		case item.Error != nil:
			switch item.Error.Code {
			case wire.CodeShed, wire.CodeDraining, wire.CodeDeadlineQueued,
				wire.CodeDeadlineRunning, wire.CodeShardUnavailable, wire.CodeInjected:
				res.itemOverload++
			default:
				res.itemErrors++
			}
		case len(item.Data) > 0:
			var sub result
			sub.parseReport(item.Data)
			res.degraded = res.degraded || sub.degraded
			res.missingBound = res.missingBound || sub.missingBound
			res.partial = res.partial || sub.partial
			res.missingCoverage = res.missingCoverage || sub.missingCoverage
		default:
			res.itemErrors++
		}
	}
}

func (res *result) readRetryAfter(resp *http.Response) {
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			res.retryAfter = time.Duration(secs) * time.Second
		}
	}
}

// sendStream posts one explain to /v1/explain/stream and consumes the SSE
// stream, recording the anytime latencies: ttfe at the first `improvement`
// event, ttconverged at the `done` event. A pre-stream refusal (shedding,
// bad spec, queued-out deadline) answers plain JSON and is classified like
// any explain attempt; a mid-stream `error` event carries the envelope's
// error shape and is terminal — the stream already consumed the budget, so
// it is never retried.
func sendStream(client *http.Client, url string, body []byte) result {
	t0 := time.Now()
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return result{transport: true}
	}
	defer resp.Body.Close()
	res := result{status: resp.StatusCode}
	res.readRetryAfter(resp)
	if !strings.HasPrefix(resp.Header.Get("Content-Type"), "text/event-stream") {
		// Refused before the stream opened: a plain JSON answer.
		blob, err := io.ReadAll(resp.Body)
		if err != nil {
			res.transport = true
			return res
		}
		if !json.Valid(blob) {
			if res.status >= 500 {
				res.transport = true
			} else {
				res.badJSON = true
			}
			return res
		}
		if res.status >= 200 && res.status < 300 {
			res.parseReport(blob)
		} else {
			res.parseError(blob)
		}
		return res
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	event := ""
	done := false
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data := []byte(strings.TrimPrefix(line, "data: "))
			switch event {
			case "improvement":
				if res.ttfe == 0 {
					res.ttfe = time.Since(t0)
				}
				if !json.Valid(data) {
					res.badJSON = true
				}
			case "done":
				res.ttconverged = time.Since(t0)
				done = true
				res.parseReport(data)
			case "error":
				res.streamDead = true
				res.parseError(data)
			}
		}
	}
	if sc.Err() != nil {
		return result{transport: true}
	}
	if !done && !res.streamDead {
		// The stream ended without a done or error event: truncated.
		res.transport = true
	}
	return res
}

// decodeBody unwraps a v1 envelope's data field into v, falling back to
// decoding the body as the bare legacy shape — so whyload works against
// enveloped, -compat-v0 (spliced), and pre-envelope servers alike.
func decodeBody(blob []byte, v any) error {
	var env wire.Envelope
	if json.Unmarshal(blob, &env) == nil && len(env.Data) > 0 {
		return json.Unmarshal(env.Data, v)
	}
	return json.Unmarshal(blob, v)
}

// fetchStats reads the daemon's post-run stats. A stats failure never fails
// the load run — the counters are observability, not the workload — so it
// degrades to a warning and a nil response.
func fetchStats(client *http.Client, addr string) *wire.StatsResponse {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		fmt.Fprintf(os.Stderr, "whyload: reading /v1/stats: %v\n", err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "whyload: reading /v1/stats: %s\n", resp.Status)
		return nil
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whyload: reading /v1/stats: %v\n", err)
		return nil
	}
	var stats wire.StatsResponse
	if err := decodeBody(blob, &stats); err != nil {
		fmt.Fprintf(os.Stderr, "whyload: decoding /v1/stats: %v\n", err)
		return nil
	}
	return &stats
}

func sortedKernelDatasets(m map[string]map[string]wire.KernelCounters) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

func sortedShardDatasets(m map[string]*wire.ShardingStats) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildJobs derives the request corpus from the daemon's dataset listing.
// A request that fails to marshal is counted and skipped, never fatal: one
// bad record must not kill a load run.
func buildJobs(client *http.Client, addr, mix string, budget int, allowPartial bool) ([]job, int, error) {
	resp, err := client.Get(addr + "/v1/datasets")
	if err != nil {
		return nil, 0, fmt.Errorf("discovering datasets: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, 0, fmt.Errorf("discovering datasets: %s", resp.Status)
	}
	listing, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, fmt.Errorf("reading dataset listing: %w", err)
	}
	var infos []wire.DatasetInfo
	if err := decodeBody(listing, &infos); err != nil {
		return nil, 0, fmt.Errorf("decoding dataset listing: %w", err)
	}
	var jobs []job
	skipped := 0
	add := func(kind string, body any) {
		blob, err := json.Marshal(body)
		if err != nil {
			skipped++
			fmt.Fprintf(os.Stderr, "whyload: skipping unmarshalable %s request: %v\n", kind, err)
			return
		}
		jobs = append(jobs, job{kind: kind, body: blob})
	}
	// The stream mix replays the explain corpus over SSE.
	explainKind := "explain"
	if mix == "stream" {
		explainKind = "stream"
	}
	for _, info := range infos {
		for _, builtin := range info.Builtins {
			if mix != "match" {
				add(explainKind, wire.ExplainRequest{
					Dataset: info.Name, Builtin: builtin, Failing: true, Lower: 1, Budget: budget,
					AllowPartial: allowPartial,
				})
				add(explainKind, wire.ExplainRequest{
					Dataset: info.Name, Builtin: builtin, Lower: 1, Upper: 3, Budget: budget,
					AllowPartial: allowPartial,
				})
			}
			if mix == "match" || mix == "mixed" {
				add("match", wire.MatchRequest{
					Dataset: info.Name, Builtin: builtin, AllowPartial: allowPartial,
				})
				add("match", wire.MatchRequest{
					Dataset: info.Name, Builtin: builtin, Mode: "find", Limit: 10, AllowPartial: allowPartial,
				})
			}
		}
	}
	return jobs, skipped, nil
}

// mutateJobs builds write jobs for -mutate-frac: each is a self-contained
// batch — two fresh "loadtest" vertices joined by a "loadtest" edge via
// batch-local references — so it always names live elements no matter how
// many mutations ran before it, and its types match no built-in query, so
// the read corpus' answers stay comparable while every write still forces a
// full refreeze. Sharded datasets reject mutation, so they are skipped
// (discovered from /v1/stats). The job count makes mutations ≈ frac of the
// final corpus: n = frac·len(jobs)/(1−frac), at least one per dataset.
func mutateJobs(client *http.Client, addr string, frac float64, corpus int) ([]job, error) {
	stats := fetchStats(client, addr)
	if stats == nil {
		return nil, fmt.Errorf("discovering mutable datasets: /v1/stats unavailable")
	}
	var names []string
	for name, ds := range stats.Datasets {
		if ds.Sharding == nil {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		return nil, nil
	}
	sort.Strings(names)
	n := int(math.Ceil(frac * float64(corpus) / (1 - frac)))
	if n < len(names) {
		n = len(names)
	}
	attrs := func(tag string) map[string]wire.Value {
		return map[string]wire.Value{
			"type": {Kind: "string", Str: "loadtest"},
			"tag":  {Kind: "string", Str: tag},
		}
	}
	jobs := make([]job, 0, n)
	for i := 0; i < n; i++ {
		body, err := json.Marshal(wire.MutateRequest{
			Dataset: names[i%len(names)],
			AddVertices: []wire.MutVertex{
				{Attrs: attrs("whyload-a")},
				{Attrs: attrs("whyload-b")},
			},
			AddEdges: []wire.MutEdge{{From: -1, To: -2, Type: "loadtest"}},
		})
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, job{kind: "mutate", body: body})
	}
	return jobs, nil
}

// interleave spreads the write jobs evenly through the read corpus so
// refreezes land throughout the run instead of clustering at the end.
func interleave(reads, writes []job) []job {
	if len(writes) == 0 {
		return reads
	}
	out := make([]job, 0, len(reads)+len(writes))
	stride := len(reads)/len(writes) + 1
	w := 0
	for i, j := range reads {
		out = append(out, j)
		if (i+1)%stride == 0 && w < len(writes) {
			out = append(out, writes[w])
			w++
		}
	}
	out = append(out, writes[w:]...)
	return out
}

// percentiles returns p50/p95/p99/max in milliseconds.
func percentiles(lats []time.Duration) (p50, p95, p99, max float64) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return float64(sorted[idx].Nanoseconds()) / 1e6
	}
	return at(0.50), at(0.95), at(0.99), float64(sorted[len(sorted)-1].Nanoseconds()) / 1e6
}

func sortedKinds(m map[string]kindStats) []string {
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
