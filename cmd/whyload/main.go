// Command whyload is the why-query load generator: it discovers a running
// whydbd's datasets and built-in queries, replays a mix of explain and match
// requests at a target concurrency, and reports throughput (RPS) and latency
// percentiles (p50/p95/p99) — the repo's end-to-end service numbers.
//
// Usage:
//
//	whyload -addr http://127.0.0.1:8080 -mix mixed -concurrency 8 -duration 10s
//	whyload -addr http://127.0.0.1:8091 -mix explain -requests 200 -out summary.json
//
// The request corpus is derived from GET /v1/datasets: per dataset, every
// built-in query yields a why-empty explain (its failing variant), a
// bounded explain (why-so-many against a tight interval), a count match,
// and a find match. -mix selects explain ops, match ops, or both.
//
// whyload exits non-zero if any request failed (non-2xx or transport
// error), so a CI smoke run fails loudly; -allow-errors downgrades that to
// a report line.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/wire"
)

type job struct {
	kind string // "explain" | "match"
	body []byte
}

// kindStats aggregates one request kind's outcomes.
type kindStats struct {
	Requests  int     `json:"requests"`
	Errors    int     `json:"errors"`
	P50Ms     float64 `json:"p50Ms"`
	P95Ms     float64 `json:"p95Ms"`
	P99Ms     float64 `json:"p99Ms"`
	MaxMs     float64 `json:"maxMs"`
	MeanMs    float64 `json:"meanMs"`
	latencies []time.Duration
}

// summary is the machine-readable run report (-out, uploaded as a CI
// artifact). Kernel carries the daemon's post-run search-kernel counters
// per dataset and explanation family, read from GET /v1/stats.
type summary struct {
	Target      string                                    `json:"target"`
	Mix         string                                    `json:"mix"`
	Concurrency int                                       `json:"concurrency"`
	Requests    int                                       `json:"requests"`
	Errors      int                                       `json:"errors"`
	DurationMs  float64                                   `json:"durationMs"`
	RPS         float64                                   `json:"rps"`
	P50Ms       float64                                   `json:"p50Ms"`
	P95Ms       float64                                   `json:"p95Ms"`
	P99Ms       float64                                   `json:"p99Ms"`
	MaxMs       float64                                   `json:"maxMs"`
	MeanMs      float64                                   `json:"meanMs"`
	PerKind     map[string]kindStats                      `json:"perKind"`
	Kernel      map[string]map[string]wire.KernelCounters `json:"kernel,omitempty"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "whydbd base URL")
	mix := flag.String("mix", "mixed", "request mix: explain, match, or mixed")
	concurrency := flag.Int("concurrency", 8, "concurrent request workers")
	requests := flag.Int("requests", 0, "total requests to send (0 = run for -duration)")
	duration := flag.Duration("duration", 10*time.Second, "run length when -requests is 0")
	budget := flag.Int("budget", 150, "explanation candidate budget per explain request")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request client timeout")
	out := flag.String("out", "", "write the JSON summary to this file")
	allowErrors := flag.Bool("allow-errors", false, "exit 0 even when requests failed")
	flag.Parse()
	if *mix != "explain" && *mix != "match" && *mix != "mixed" {
		fmt.Fprintf(os.Stderr, "unknown mix %q (want explain, match, or mixed)\n", *mix)
		os.Exit(2)
	}
	if *concurrency < 1 {
		*concurrency = 1
	}

	client := &http.Client{Timeout: *timeout}
	jobs, err := buildJobs(client, *addr, *mix, *budget)
	if err != nil {
		fmt.Fprintf(os.Stderr, "whyload: %v\n", err)
		os.Exit(1)
	}
	if len(jobs) == 0 {
		fmt.Fprintln(os.Stderr, "whyload: the daemon serves no datasets")
		os.Exit(1)
	}

	type sample struct {
		kind string
		lat  time.Duration
		err  bool
	}
	perWorker := make([][]sample, *concurrency)
	var next atomic.Int64
	deadline := time.Now().Add(*duration)
	useCount := *requests > 0
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				i := next.Add(1) - 1
				if useCount {
					if int(i) >= *requests {
						return
					}
				} else if time.Now().After(deadline) {
					return
				}
				j := jobs[int(i)%len(jobs)]
				t0 := time.Now()
				ok := post(client, *addr+"/v1/"+j.kind, j.body)
				perWorker[w] = append(perWorker[w], sample{kind: j.kind, lat: time.Since(t0), err: !ok})
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	sum := summary{
		Target:      *addr,
		Mix:         *mix,
		Concurrency: *concurrency,
		DurationMs:  float64(elapsed.Nanoseconds()) / 1e6,
		PerKind:     map[string]kindStats{},
	}
	var all []time.Duration
	var mean time.Duration
	for _, ws := range perWorker {
		for _, s := range ws {
			sum.Requests++
			ks := sum.PerKind[s.kind]
			ks.Requests++
			if s.err {
				sum.Errors++
				ks.Errors++
			} else {
				all = append(all, s.lat)
				mean += s.lat
				ks.latencies = append(ks.latencies, s.lat)
			}
			sum.PerKind[s.kind] = ks
		}
	}
	sum.RPS = float64(sum.Requests) / elapsed.Seconds()
	sum.P50Ms, sum.P95Ms, sum.P99Ms, sum.MaxMs = percentiles(all)
	if len(all) > 0 {
		sum.MeanMs = float64(mean.Nanoseconds()) / 1e6 / float64(len(all))
	}
	for kind, ks := range sum.PerKind {
		var km time.Duration
		for _, l := range ks.latencies {
			km += l
		}
		ks.P50Ms, ks.P95Ms, ks.P99Ms, ks.MaxMs = percentiles(ks.latencies)
		if n := len(ks.latencies); n > 0 {
			ks.MeanMs = float64(km.Nanoseconds()) / 1e6 / float64(n)
		}
		ks.latencies = nil
		sum.PerKind[kind] = ks
	}

	sum.Kernel = fetchKernelCounters(client, *addr)

	fmt.Printf("whyload: %s mix against %s, %d workers\n", sum.Mix, sum.Target, sum.Concurrency)
	fmt.Printf("  %d requests in %.2fs → %.1f req/s, %d errors\n", sum.Requests, elapsed.Seconds(), sum.RPS, sum.Errors)
	fmt.Printf("  latency ms: p50=%.2f p95=%.2f p99=%.2f max=%.2f mean=%.2f\n", sum.P50Ms, sum.P95Ms, sum.P99Ms, sum.MaxMs, sum.MeanMs)
	for _, kind := range sortedKinds(sum.PerKind) {
		ks := sum.PerKind[kind]
		fmt.Printf("  %-8s %5d requests, %d errors, p50=%.2f p95=%.2f p99=%.2f max=%.2f\n",
			kind, ks.Requests, ks.Errors, ks.P50Ms, ks.P95Ms, ks.P99Ms, ks.MaxMs)
	}
	for _, ds := range sortedKernelDatasets(sum.Kernel) {
		families := sum.Kernel[ds]
		line := fmt.Sprintf("  kernel %-7s", ds)
		for _, fam := range []string{"relax", "modtree", "mcs"} {
			c := families[fam]
			line += fmt.Sprintf(" %s %dx/%dh/%dw", fam, c.Executions, c.DedupHits, c.SpecWaste)
		}
		fmt.Println(line)
	}
	if *out != "" {
		blob, err := json.MarshalIndent(sum, "", "  ")
		if err == nil {
			err = os.WriteFile(*out, append(blob, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "whyload: writing summary: %v\n", err)
			os.Exit(1)
		}
	}
	if sum.Errors > 0 && !*allowErrors {
		os.Exit(1)
	}
}

// fetchKernelCounters reads the daemon's post-run search-kernel counters
// (GET /v1/stats) per dataset and explanation family. A stats failure never
// fails the load run — the counters are observability, not the workload —
// so it degrades to a warning and a nil map.
func fetchKernelCounters(client *http.Client, addr string) map[string]map[string]wire.KernelCounters {
	resp, err := client.Get(addr + "/v1/stats")
	if err != nil {
		fmt.Fprintf(os.Stderr, "whyload: reading /v1/stats: %v\n", err)
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		fmt.Fprintf(os.Stderr, "whyload: reading /v1/stats: %s\n", resp.Status)
		return nil
	}
	var stats wire.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		fmt.Fprintf(os.Stderr, "whyload: decoding /v1/stats: %v\n", err)
		return nil
	}
	kernel := make(map[string]map[string]wire.KernelCounters, len(stats.Datasets))
	for name, ds := range stats.Datasets {
		kernel[name] = ds.Kernel
	}
	return kernel
}

func sortedKernelDatasets(m map[string]map[string]wire.KernelCounters) []string {
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// buildJobs derives the request corpus from the daemon's dataset listing.
func buildJobs(client *http.Client, addr, mix string, budget int) ([]job, error) {
	resp, err := client.Get(addr + "/v1/datasets")
	if err != nil {
		return nil, fmt.Errorf("discovering datasets: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("discovering datasets: %s", resp.Status)
	}
	var infos []wire.DatasetInfo
	if err := json.NewDecoder(resp.Body).Decode(&infos); err != nil {
		return nil, fmt.Errorf("decoding dataset listing: %w", err)
	}
	var jobs []job
	add := func(kind string, body any) {
		blob, err := json.Marshal(body)
		if err != nil {
			panic(err) // request types always marshal
		}
		jobs = append(jobs, job{kind: kind, body: blob})
	}
	for _, info := range infos {
		for _, builtin := range info.Builtins {
			if mix != "match" {
				add("explain", wire.ExplainRequest{
					Dataset: info.Name, Builtin: builtin, Failing: true, Lower: 1, Budget: budget,
				})
				add("explain", wire.ExplainRequest{
					Dataset: info.Name, Builtin: builtin, Lower: 1, Upper: 3, Budget: budget,
				})
			}
			if mix != "explain" {
				add("match", wire.MatchRequest{
					Dataset: info.Name, Builtin: builtin,
				})
				add("match", wire.MatchRequest{
					Dataset: info.Name, Builtin: builtin, Mode: "find", Limit: 10,
				})
			}
		}
	}
	return jobs, nil
}

// post sends one request and reports whether it got a 2xx answer with a
// well-formed JSON body.
func post(client *http.Client, url string, body []byte) bool {
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	blob, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return false
	}
	return json.Valid(blob)
}

// percentiles returns p50/p95/p99/max in milliseconds.
func percentiles(lats []time.Duration) (p50, p95, p99, max float64) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(sorted)))) - 1
		if idx < 0 {
			idx = 0
		}
		return float64(sorted[idx].Nanoseconds()) / 1e6
	}
	return at(0.50), at(0.95), at(0.99), float64(sorted[len(sorted)-1].Nanoseconds()) / 1e6
}

func sortedKinds(m map[string]kindStats) []string {
	kinds := make([]string, 0, len(m))
	for k := range m {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return kinds
}
