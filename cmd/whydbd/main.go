// Command whydbd is the long-running why-query daemon: it loads one or more
// built-in datasets at startup, wraps each in a concurrency-safe core.Engine,
// and serves the HTTP/JSON API of internal/server until terminated.
//
// Usage:
//
//	whydbd -addr :8080 -datasets ldbc,dbpedia
//	whydbd -addr 127.0.0.1:8091 -datasets ldbc -scale 0.5 -workers 4
//
// Endpoints: POST /v1/explain, POST /v1/match, GET /v1/datasets,
// GET /v1/stats, GET /healthz. See the README's HTTP API section for request
// bodies and curl examples. SIGINT/SIGTERM trigger a graceful shutdown:
// in-flight requests get -shutdown-grace to finish (their contexts are
// cancelled at the deadline, which stops the explanation searches).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/server"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	datasets := flag.String("datasets", "ldbc,dbpedia", "comma-separated datasets to load (ldbc, dbpedia)")
	scale := flag.Float64("scale", 1.0, "dataset size factor (1.0 = the experiment-suite defaults)")
	workers := flag.Int("workers", 0, "explanation-search workers per engine (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request processing deadline")
	maxTimeout := flag.Duration("max-timeout", 120*time.Second, "upper clamp for client-requested timeouts")
	budget := flag.Int("budget", 0, "default explanation candidate budget (0 = engine default, 300)")
	maxBudget := flag.Int("max-budget", 20000, "upper clamp for client-requested budgets")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	flag.Parse()

	srv := server.New(server.Config{
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTimeout,
		DefaultBudget:  *budget,
		MaxBudget:      *maxBudget,
	})
	loaded := 0
	for _, name := range strings.Split(*datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		start := time.Now()
		switch name {
		case "ldbc":
			eng := core.NewEngine(datagen.LDBC(datagen.DefaultLDBC().Scaled(*scale)))
			eng.SetWorkers(*workers)
			srv.AddDataset(name, eng, workload.LDBCQueries(), workload.FailingVariant)
			logLoaded(name, eng, start)
		case "dbpedia":
			cfg := datagen.DefaultDBpedia()
			cfg.Entities = scaleCount(cfg.Entities, *scale)
			eng := core.NewEngine(datagen.DBpedia(cfg))
			eng.SetWorkers(*workers)
			srv.AddDataset(name, eng, workload.DBpediaQueries(), workload.DBpediaFailingVariant)
			logLoaded(name, eng, start)
		default:
			fmt.Fprintf(os.Stderr, "unknown dataset %q (want ldbc or dbpedia)\n", name)
			os.Exit(2)
		}
		loaded++
	}
	if loaded == 0 {
		fmt.Fprintln(os.Stderr, "no datasets loaded")
		os.Exit(2)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("whydbd listening on %s", *addr)
		errCh <- httpSrv.ListenAndServe()
	}()
	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		log.Printf("shutdown signal received, draining for up to %v", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		err := httpSrv.Shutdown(shutdownCtx)
		if errors.Is(err, context.DeadlineExceeded) {
			// Stragglers past the grace period: closing the connections
			// cancels their request contexts, which stops the searches.
			err = httpSrv.Close()
		}
		if err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

func logLoaded(name string, eng *core.Engine, start time.Time) {
	g := eng.Graph()
	log.Printf("loaded dataset %s: %d vertices, %d edges, %d workers (%.2fs)",
		name, g.NumVertices(), g.NumEdges(), eng.Workers(), time.Since(start).Seconds())
}

func scaleCount(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 1 {
		v = 1
	}
	return v
}
