// Command whydbd is the long-running why-query daemon: it loads one or more
// built-in datasets at startup, wraps each in a concurrency-safe core.Engine,
// and serves the HTTP/JSON API of internal/server until terminated.
//
// Usage:
//
//	whydbd -addr :8080 -datasets ldbc,dbpedia
//	whydbd -addr 127.0.0.1:8091 -datasets ldbc -scale 0.5 -workers 4
//	whydbd -addr :8080 -snapshot snaps/                               # boot from whydb pack output
//	whydbd -addr :8080 -inject 'seed=42,latency=0.1:5ms,error=0.05'   # chaos drills
//
// Endpoints: POST /v1/explain, POST /v1/explain/stream (SSE),
// POST /v1/match, GET /v1/datasets, GET /v1/stats, GET /healthz,
// GET /readyz. Every v1 response is the unified {requestId, data|error}
// envelope; -compat-v0 restores the deprecated pre-envelope shapes for one
// release. See the README's "API v1 reference" and "Operations & resilience"
// sections for request bodies, error codes, brownout states, and
// fault-injection flags.
//
// The listener opens before dataset generation starts: /healthz answers
// immediately (the process is alive) while /readyz answers 503 until every
// dataset is loaded — load balancers route on readiness.
//
// SIGINT/SIGTERM trigger a graceful drain: /readyz flips to 503, -drain-delay
// gives load balancers time to stop routing, then in-flight requests get
// -shutdown-grace to finish; halfway through the grace their contexts are
// cancelled (which stops the explanation searches within one candidate
// execution and answers 503 + Retry-After), and at the deadline remaining
// connections are closed.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/datagen"
	"repro/internal/faultinject"
	"repro/internal/graph"
	"repro/internal/resilience"
	"repro/internal/server"
	"repro/internal/shard"
	"repro/internal/snapshot"
	"repro/internal/workload"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	datasets := flag.String("datasets", "ldbc,dbpedia", "comma-separated datasets to load (ldbc, dbpedia)")
	scale := flag.Float64("scale", 1.0, "dataset size factor (1.0 = the experiment-suite defaults)")
	workers := flag.Int("workers", 0, "explanation-search workers per engine (0 = GOMAXPROCS)")
	timeout := flag.Duration("timeout", 30*time.Second, "default per-request processing deadline")
	maxTimeout := flag.Duration("max-timeout", 120*time.Second, "upper clamp for client-requested timeouts")
	budget := flag.Int("budget", 0, "default explanation candidate budget (0 = engine default, 300)")
	maxBudget := flag.Int("max-budget", 20000, "upper clamp for client-requested budgets")
	grace := flag.Duration("shutdown-grace", 10*time.Second, "graceful-shutdown deadline for in-flight requests")
	drainDelay := flag.Duration("drain-delay", 0, "pause between flipping /readyz and starting shutdown (LB de-routing time)")
	queueCap := flag.Int("queue-cap", 0, "admission queue bound per dataset (0 = 4x the dataset's execution slots)")
	maxQueueWait := flag.Duration("max-queue-wait", 5*time.Second, "max time a request may wait for an execution slot before 504")
	degradeAt := flag.Float64("degrade-at", 0.5, "pressure at which the brownout controller degrades explains")
	shedAt := flag.Float64("shed-at", 0.9, "pressure at which the brownout controller sheds requests (429)")
	latencyBudget := flag.Duration("latency-budget", 500*time.Millisecond, "latency EWMA mapping to pressure 1.0")
	enterHold := flag.Duration("brownout-enter-hold", 250*time.Millisecond, "how long pressure must hold above a threshold before stepping up")
	exitHold := flag.Duration("brownout-exit-hold", 2*time.Second, "how long pressure must hold below a threshold before stepping down")
	inject := flag.String("inject", "", "fault-injection spec, e.g. 'seed=42,latency=0.1:5ms,error=0.05,cancel=0.03:4,starve=0.02:20ms,rpc-error=0.1' (off by default)")
	compatV0 := flag.Bool("compat-v0", false, "serve the deprecated pre-envelope response shapes alongside/instead of the v1 envelope (one deprecation release)")
	shards := flag.Int("shards", 0, "split each dataset's counting across N in-process shards (0 = unsharded)")
	peers := flag.String("peers", "", "comma-separated peer base URLs for HTTP scatter-gather counting (e.g. 'http://h1:8080,http://h2:8080'); mutually exclusive with -shards")
	snapDir := flag.String("snapshot", "", "load each dataset from <dir>/<name>.snap (whydb pack output) instead of generating it; -scale is ignored")
	snapMode := flag.String("snapshot-mode", "auto", "snapshot load path: auto (mmap where possible), mmap, or read")
	maxMutationBatch := flag.Int("max-mutation-batch", 0, "max elements (adds + removes) per /v1/graph/mutate batch (0 = server default, 100000)")
	maxBatch := flag.Int("max-batch", 0, "max items per /v1/explain/batch request (0 = server default, 64)")
	flag.Parse()

	// Validate dataset names before opening the listener: a typo should be
	// an immediate exit 2, not a daemon that never becomes ready.
	var names []string
	for _, name := range strings.Split(*datasets, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		if name != "ldbc" && name != "dbpedia" {
			fmt.Fprintf(os.Stderr, "unknown dataset %q (want ldbc or dbpedia)\n", name)
			os.Exit(2)
		}
		names = append(names, name)
	}
	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "no datasets loaded")
		os.Exit(2)
	}
	var peerURLs []string
	if *peers != "" {
		if *shards > 0 {
			fmt.Fprintln(os.Stderr, "-shards and -peers are mutually exclusive")
			os.Exit(2)
		}
		for _, u := range strings.Split(*peers, ",") {
			u = strings.TrimSpace(u)
			if u == "" {
				continue
			}
			if !strings.HasPrefix(u, "http://") && !strings.HasPrefix(u, "https://") {
				fmt.Fprintf(os.Stderr, "peer %q: want an http(s) base URL\n", u)
				os.Exit(2)
			}
			peerURLs = append(peerURLs, strings.TrimSuffix(u, "/"))
		}
		if len(peerURLs) < 2 {
			fmt.Fprintln(os.Stderr, "-peers wants at least two peer URLs")
			os.Exit(2)
		}
	}
	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "-shards must be >= 0")
		os.Exit(2)
	}
	var loadMode snapshot.Mode
	switch *snapMode {
	case "auto":
		loadMode = snapshot.ModeAuto
	case "mmap":
		loadMode = snapshot.ModeMmap
	case "read":
		loadMode = snapshot.ModeRead
	default:
		fmt.Fprintf(os.Stderr, "unknown -snapshot-mode %q (want auto, mmap, or read)\n", *snapMode)
		os.Exit(2)
	}

	cfg := server.Config{
		DefaultTimeout:   *timeout,
		MaxTimeout:       *maxTimeout,
		DefaultBudget:    *budget,
		MaxBudget:        *maxBudget,
		QueueCap:         *queueCap,
		MaxQueueWait:     *maxQueueWait,
		CompatV0:         *compatV0,
		MaxMutationBatch: *maxMutationBatch,
		MaxBatch:         *maxBatch,
		Resilience: resilience.Config{
			DegradeAt:     *degradeAt,
			ShedAt:        *shedAt,
			LatencyBudget: *latencyBudget,
			EnterHold:     *enterHold,
			ExitHold:      *exitHold,
		},
	}
	if *inject != "" {
		icfg, err := faultinject.ParseSpec(*inject)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cfg.Injector = faultinject.New(icfg)
		log.Printf("fault injection armed: %+v", icfg)
	}
	srv := server.New(cfg)

	// Serve while loading: the listener opens first so liveness and
	// readiness are observable during dataset generation.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() {
		log.Printf("whydbd listening on %s (not ready: loading %s)", *addr, strings.Join(names, ","))
		errCh <- httpSrv.ListenAndServe()
	}()

	// Load datasets concurrently — generation/loading dominates startup, and
	// the datasets are independent. /readyz names which datasets are still
	// loading, so an operator watching readiness sees progress, not just
	// "loading".
	loading := newLoadTracker(srv, names)
	loadStart := time.Now()
	for _, name := range names {
		go func(name string) {
			start := time.Now()
			var eng *core.Engine
			var source string
			if *snapDir != "" {
				path := filepath.Join(*snapDir, name+".snap")
				loaded, err := snapshot.ReadFile(path, loadMode)
				if err != nil {
					log.Fatalf("loading snapshot %s: %v", path, err)
				}
				eng = core.NewEngine(loaded.Graph)
				source = "snapshot:" + filepath.Base(path)
				log.Printf("snapshot %s: %d bytes, checksum %08x, mapped=%v", path, loaded.Manifest.Bytes, loaded.Manifest.Checksum, loaded.Manifest.Mapped)
			} else {
				eng = core.NewEngine(generate(name, *scale))
				source = "datagen"
			}
			eng.SetWorkers(*workers)
			switch name {
			case "ldbc":
				srv.AddDataset(name, eng, workload.LDBCQueries(), workload.FailingVariant)
			case "dbpedia":
				srv.AddDataset(name, eng, workload.DBpediaQueries(), workload.DBpediaFailingVariant)
			}
			srv.SetDatasetSource(name, source)
			logLoaded(name, eng, start)
			if err := shardDataset(srv, name, eng, *shards, peerURLs); err != nil {
				log.Fatalf("sharding %s: %v", name, err)
			}
			if loading.done(name) {
				srv.SetReady()
				log.Printf("whydbd ready: %d datasets (%.2fs)", len(names), time.Since(loadStart).Seconds())
			}
		}(name)
	}

	select {
	case err := <-errCh:
		log.Fatalf("serve: %v", err)
	case <-ctx.Done():
		// Drain sequence: stop routing (readyz 503), wait for the LB, then
		// shut down with the grace period — cancelling in-flight searches at
		// the halfway mark so they answer 503 instead of being cut off.
		srv.BeginDrain()
		log.Printf("shutdown signal received: draining (delay %v, grace %v)", *drainDelay, *grace)
		if *drainDelay > 0 {
			time.Sleep(*drainDelay)
		}
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		halfway := time.AfterFunc(*grace/2, srv.CancelInFlight)
		defer halfway.Stop()
		err := httpSrv.Shutdown(shutdownCtx)
		if errors.Is(err, context.DeadlineExceeded) {
			// Stragglers past the grace period: closing the connections
			// cancels their request contexts, which stops the searches.
			err = httpSrv.Close()
		}
		if err != nil {
			log.Printf("shutdown: %v", err)
		}
	}
}

// shardDataset wires a dataset's counting into a scatter-gather group:
// -shards N builds N in-process shards over the loaded matcher, -peers builds
// one HTTP shard per peer daemon (each of which must serve the same dataset
// at the same scale — the vertex-id space is partitioned by position in the
// peer list).
func shardDataset(srv *server.Server, name string, eng *core.Engine, shards int, peers []string) error {
	switch {
	case len(peers) > 0:
		m := eng.Matcher()
		members := make([]shard.Shard, len(peers))
		for i, u := range peers {
			members[i] = shard.NewClient(fmt.Sprintf("peer%d@%s", i, u), u, name, nil)
		}
		g, err := shard.New("http", members, shard.Partition(m.Graph().NumVertices(), len(peers)), shard.Config{})
		if err != nil {
			return err
		}
		return srv.AddShardGroup(name, g)
	case shards > 0:
		g, err := shard.NewLocalGroup(eng.Matcher(), shards, shard.Config{})
		if err != nil {
			return err
		}
		return srv.AddShardGroup(name, g)
	}
	return nil
}

// generate builds a dataset from internal/datagen at the given scale.
func generate(name string, scale float64) *graph.Graph {
	switch name {
	case "ldbc":
		return datagen.LDBC(datagen.DefaultLDBC().Scaled(scale))
	case "dbpedia":
		cfg := datagen.DefaultDBpedia()
		cfg.Entities = scaleCount(cfg.Entities, scale)
		return datagen.DBpedia(cfg)
	}
	panic("unreachable: dataset names validated at startup")
}

// loadTracker tracks which datasets are still loading and keeps the /readyz
// reason naming them.
type loadTracker struct {
	srv       *server.Server
	mu        sync.Mutex
	remaining map[string]bool
}

func newLoadTracker(srv *server.Server, names []string) *loadTracker {
	t := &loadTracker{srv: srv, remaining: make(map[string]bool, len(names))}
	for _, n := range names {
		t.remaining[n] = true
	}
	srv.SetNotReady("loading " + strings.Join(names, ","))
	return t
}

// done marks one dataset loaded; it returns true when that was the last one
// (the caller flips readiness), otherwise it updates the reason to name the
// datasets still in flight.
func (t *loadTracker) done(name string) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	delete(t.remaining, name)
	if len(t.remaining) == 0 {
		return true
	}
	left := make([]string, 0, len(t.remaining))
	for n := range t.remaining {
		left = append(left, n)
	}
	sort.Strings(left)
	t.srv.SetNotReady("loading " + strings.Join(left, ","))
	return false
}

func logLoaded(name string, eng *core.Engine, start time.Time) {
	g := eng.Graph()
	log.Printf("loaded dataset %s: %d vertices, %d edges, %d workers (%.2fs)",
		name, g.NumVertices(), g.NumEdges(), eng.Workers(), time.Since(start).Seconds())
}

func scaleCount(n int, f float64) int {
	v := int(float64(n) * f)
	if v < 1 {
		v = 1
	}
	return v
}
