// Benchmarks regenerating the thesis' evaluation artifacts, one per table /
// figure (see DESIGN.md experiment index). cmd/benchrunner prints the full
// rows and series; the benchmarks here measure the underlying computations
// so regressions in any experiment path show up in `go test -bench`.
package repro_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"repro"
	"repro/internal/datagen"
	"repro/internal/match"
	"repro/internal/mcs"
	"repro/internal/metrics"
	"repro/internal/modtree"
	"repro/internal/relax"
	"repro/internal/search"
	"repro/internal/stats"
	"repro/internal/workload"
)

var (
	benchOnce sync.Once
	benchLDBC *repro.Graph
	benchDBp  *repro.Graph
)

func setup() (*repro.Graph, *repro.Graph) {
	benchOnce.Do(func() {
		benchLDBC = datagen.LDBC(datagen.DefaultLDBC())
		benchDBp = datagen.DBpedia(datagen.DefaultDBpedia())
	})
	return benchLDBC, benchDBp
}

// benchWorkers is the worker count the explanation-search benchmarks run
// with: BENCH_WORKERS when set, otherwise min(4, GOMAXPROCS) — the paper
// figures' searches at four workers on CI-class machines, sequential on a
// single core. Results are byte-identical at any setting; only wall-clock
// changes.
func benchWorkers() int {
	if s := os.Getenv("BENCH_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	if p := runtime.GOMAXPROCS(0); p < 4 {
		return p
	}
	return 4
}

// BenchmarkTableA1 measures executing LDBC QUERY 1–4 (Table A.1 row
// regeneration).
func BenchmarkTableA1(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	queries := workload.LDBCQueries()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, nq := range queries {
			if got := m.Count(nq.Build(), 0); got != nq.C1 {
				b.Fatalf("%s: %d != %d", nq.Name, got, nq.C1)
			}
		}
	}
}

// BenchmarkFig37 measures the syntactic-distance series of Fig. 3.7.
func BenchmarkFig37(b *testing.B) {
	g, _ := setup()
	dom := stats.BuildDomain(g, 16)
	orig := workload.LDBCQuery2()
	cands := workload.RandomExplanations(orig, dom, 100, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			_ = metrics.SyntacticDistance(orig, c)
		}
	}
}

// BenchmarkFig38 measures the result-distance series of Fig. 3.8.
func BenchmarkFig38(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	dom := stats.BuildDomain(g, 16)
	orig := workload.LDBCQuery2()
	origRes := m.Find(orig, match.Options{Limit: 40})
	cands := workload.RandomExplanations(orig, dom, 10, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			newRes := m.Find(c, match.Options{Limit: 40})
			_ = metrics.ResultSetDistance(origRes, newRes)
		}
	}
}

// BenchmarkFig39 measures the cardinality-distance series of Fig. 3.9.
func BenchmarkFig39(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	dom := stats.BuildDomain(g, 16)
	orig := workload.LDBCQuery1()
	cands := workload.RandomExplanations(orig, dom, 10, 42)
	cthr := workload.Threshold(20, 0.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			_ = metrics.CardinalityDistance(cthr, m.Count(c, 20000))
		}
	}
}

// BenchmarkFig310 measures the bucketed distance correlation of §3.2.5.
func BenchmarkFig310(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	dom := stats.BuildDomain(g, 16)
	orig := workload.LDBCQuery2()
	origRes := m.Find(orig, match.Options{Limit: 40})
	cands := workload.RandomExplanations(orig, dom, 10, 42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, c := range cands {
			syn := metrics.SyntacticDistance(orig, c)
			res := metrics.ResultSetDistance(origRes, m.Find(c, match.Options{Limit: 40}))
			_ = syn + res
		}
	}
}

// BenchmarkFig4DiscoverMCS measures DISCOVERMCS with all optimizations on
// the failing LDBC queries (Fig. 4.A).
func BenchmarkFig4DiscoverMCS(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	q, err := workload.FailingVariant("LDBC QUERY 2")
	if err != nil {
		b.Fatal(err)
	}
	for _, variant := range []struct {
		name string
		opts mcs.Options
	}{
		{"naive", mcs.Options{}},
		{"wcc", mcs.Options{UseWCC: true}},
		{"single", mcs.Options{SinglePath: true}},
	} {
		b.Run(variant.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex := mcs.DiscoverMCS(m, st, q, variant.opts)
				if !ex.Satisfied {
					b.Fatal("MCS must exist")
				}
			}
		})
	}
}

// BenchmarkFig4QuerySize measures DISCOVERMCS cost growth with query size
// (Fig. 4.B).
func BenchmarkFig4QuerySize(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	q := workload.LDBCQuery2() // 3 edges
	q.Vertex(3).Preds["name"] = repro.EqS("Atlantis")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mcs.DiscoverMCS(m, st, q, mcs.Options{UseWCC: true})
	}
}

// BenchmarkFig4BoundedMCS measures BOUNDEDMCS under a too-many threshold
// (Fig. 4.C).
func BenchmarkFig4BoundedMCS(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	q := workload.LDBCQuery4()
	bounds := metrics.Interval{Lower: 1, Upper: workload.Threshold(195, 0.2)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = mcs.BoundedMCS(m, st, q, bounds, mcs.Options{UseWCC: true})
	}
}

// BenchmarkFig5Priority measures one coarse-grained rewriting run per
// priority function (Fig. 5.A).
func BenchmarkFig5Priority(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	q, err := workload.FailingVariant("LDBC QUERY 1")
	if err != nil {
		b.Fatal(err)
	}
	workers := benchWorkers()
	for _, p := range []relax.Priority{relax.PriorityRandom, relax.PrioritySyntactic, relax.PriorityEstimatedCardinality, relax.PriorityAvgPath1, relax.PriorityCombined} {
		b.Run(p.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := stats.New(m) // fresh cache: measure the full cost
				rw := relax.New(m, st)
				out := rw.Rewrite(q, relax.Options{Control: search.Control{Workers: workers}, Priority: p, MaxSolutions: 1, Seed: 7})
				if len(out.Solutions) == 0 {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// BenchmarkFig5Convergence measures the traced rewriting run of Fig. 5.B.
func BenchmarkFig5Convergence(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	rw := relax.New(m, st)
	q, _ := workload.FailingVariant("LDBC QUERY 2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := rw.Rewrite(q, relax.Options{Control: search.Control{MaxExecuted: 40}, Priority: relax.PriorityCombined, MaxSolutions: 3})
		if len(out.Trace) == 0 {
			b.Fatal("no trace")
		}
	}
}

// BenchmarkFig5Induced measures the combined-priority rewriting (Fig. 5.C).
func BenchmarkFig5Induced(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	rw := relax.New(m, st)
	q, _ := workload.FailingVariant("LDBC QUERY 3")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = rw.Rewrite(q, relax.Options{Priority: relax.PriorityCombined, MaxSolutions: 1})
	}
}

// BenchmarkFig5User measures one simulated-user feedback round (Fig. 5.D).
func BenchmarkFig5User(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	rw := relax.New(m, st)
	q, _ := workload.FailingVariant("LDBC QUERY 2")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pm := relax.NewPreferenceModel(1)
		out := rw.Rewrite(q, relax.Options{MaxSolutions: 1, AllowTopology: true, Prefs: pm})
		if len(out.Solutions) > 0 {
			pm.Rate(out.Solutions[0], 0)
			_ = rw.Rewrite(q, relax.Options{MaxSolutions: 1, AllowTopology: true, Prefs: pm})
		}
	}
}

// BenchmarkFig6Baselines measures TST vs exhaustive vs random on one
// too-few case (Fig. 6.A).
func BenchmarkFig6Baselines(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	dom := stats.BuildDomain(g, 16)
	s := modtree.New(m, st)
	q := workload.LDBCQuery1()
	goal := metrics.Interval{Lower: workload.Threshold(20, 2)}
	opts := modtree.Options{Control: search.Control{MaxExecuted: 100, Workers: benchWorkers()}, Goal: goal, Domain: dom}
	b.Run("tst", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.TraverseSearchTree(q, opts)
		}
	})
	b.Run("exhaustive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.Exhaustive(q, opts)
		}
	})
	b.Run("random", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = s.RandomWalk(q, opts, int64(i))
		}
	})
}

// BenchmarkFig6Topology measures TST with topology changes enabled
// (Fig. 6.B).
func BenchmarkFig6Topology(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	dom := stats.BuildDomain(g, 16)
	s := modtree.New(m, st)
	q, _ := workload.FailingVariant("LDBC QUERY 1")
	opts := modtree.Options{Control: search.Control{MaxExecuted: 100}, Goal: metrics.AtLeastOne, Domain: dom, AllowTopology: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.TraverseSearchTree(q, opts)
	}
}

// BenchmarkParallelFig5 measures one coarse-grained rewriting run per worker
// count — the Fig. 5.A search under the worker-pool layer. Results are
// byte-identical across worker counts (see the differential tests); the
// series shows the wall-clock scaling alone.
func BenchmarkParallelFig5(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	q, err := workload.FailingVariant("LDBC QUERY 1")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				st := stats.New(m) // fresh cache: measure the full cost
				rw := relax.New(m, st)
				out := rw.Rewrite(q, relax.Options{Control: search.Control{Workers: workers}, Priority: relax.PriorityCombined, MaxSolutions: 1, Seed: 7})
				if len(out.Solutions) == 0 {
					b.Fatal("no solution")
				}
			}
		})
	}
}

// BenchmarkParallelFig6 measures one TRAVERSESEARCHTREE run per worker count
// — the Fig. 6.A search under parallel child evaluation.
func BenchmarkParallelFig6(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	dom := stats.BuildDomain(g, 16)
	s := modtree.New(m, st)
	q := workload.LDBCQuery1()
	goal := metrics.Interval{Lower: workload.Threshold(20, 2)}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			opts := modtree.Options{Control: search.Control{MaxExecuted: 100, Workers: workers}, Goal: goal, Domain: dom}
			for i := 0; i < b.N; i++ {
				_ = s.TraverseSearchTree(q, opts)
			}
		})
	}
}

// BenchmarkParallelMCS measures DISCOVERMCS per worker count — the Fig. 4
// search under parallel frontier probing.
func BenchmarkParallelMCS(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	st := stats.New(m)
	q, err := workload.FailingVariant("LDBC QUERY 2")
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				ex := mcs.DiscoverMCS(m, st, q, mcs.Options{Control: search.Control{Workers: workers}})
				if !ex.Satisfied {
					b.Fatal("MCS must exist")
				}
			}
		})
	}
}

// BenchmarkSearchKernel measures the internal/search hot loop in isolation:
// the machinery every explanation search now runs on. frontier is 256
// mixed-priority push/pops on a reused frontier; executor is one run of 256
// keyed executions plus a full dedup re-scan (Seen/Execute/Record, trivial
// eval, so only kernel bookkeeping is on the clock); speculate is the
// prefetch-consume cycle at two workers over precomputed keys. The CI bench
// job gates frontier and executor ns/op against the committed BENCH_pr5.json
// baseline.
func BenchmarkSearchKernel(b *testing.B) {
	g, _ := setup()
	m := match.New(g)
	b.Run("frontier", func(b *testing.B) {
		f := search.NewFrontier(func(a, b int) bool { return a > b })
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			f.Reset()
			for j := 0; j < 256; j++ {
				f.Push(j * 2654435761 % 97) // mixed priorities, heavy ties
			}
			for f.Len() > 0 {
				f.Pop()
			}
		}
	})
	keys := make([]string, 256)
	for i := range keys {
		keys[i] = fmt.Sprintf("kernel-key-%04d", i)
	}
	b.Run("executor", func(b *testing.B) {
		ex := search.NewExecutor(m)
		eval := func(*match.Ctx) int { return 1 }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ex.Begin(search.Control{MaxExecuted: 1 << 30})
			for _, k := range keys {
				if ex.Seen(k) {
					continue
				}
				card, ok := ex.Execute(k, eval)
				if !ok {
					b.Fatal("budget must not run out")
				}
				ex.Record(card)
			}
			for _, k := range keys { // steady-state dedup-hit path
				if !ex.Seen(k) {
					b.Fatal("executed key must be seen")
				}
			}
			ex.End()
		}
	})
	b.Run("speculate", func(b *testing.B) {
		ex := search.NewExecutor(m)
		nodes := make([]int, 256)
		for i := range nodes {
			nodes[i] = i
		}
		key := func(n int) string { return keys[n] }
		eval := func(_ *match.Ctx, n int) int { return n }
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ex.Begin(search.Control{MaxExecuted: 1 << 30, Workers: 2})
			for j := range nodes {
				if j%2 == 0 {
					search.SpeculateSlice(ex, nodes[j:], key, eval)
				}
				if card, ok := ex.Execute(keys[j], func(*match.Ctx) int { return nodes[j] }); !ok || card != nodes[j] {
					b.Fatalf("consume %d = (%d, %v)", j, card, ok)
				}
			}
			ex.End()
		}
	})
}

// BenchmarkCompile measures plan compilation alone — the per-query setup
// cost (slot remapping, candidate computation, step ordering) paid by every
// rewritten candidate the relaxation searches execute.
func BenchmarkCompile(b *testing.B) {
	lg, _ := setup()
	m := match.New(lg)
	q := workload.LDBCQuery3()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := m.Compile(q)
		if p.NumOps() == 0 {
			b.Fatal("empty plan")
		}
	}
}

// BenchmarkCandidates measures candidate-list computation for one indexed
// query vertex (the §5.2.2 vertex-cardinality scan).
func BenchmarkCandidates(b *testing.B) {
	lg, _ := setup()
	m := match.New(lg)
	q := workload.LDBCQuery3()
	v := q.Vertex(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(m.Candidates(v)) == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkCompiledCount measures executing a precompiled plan with a
// reused context — the steady-state hot path with zero setup cost.
func BenchmarkCompiledCount(b *testing.B) {
	lg, _ := setup()
	m := match.New(lg)
	p := m.Compile(workload.LDBCQuery3())
	ctx := m.NewContext()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p.Count(ctx, 0) == 0 {
			b.Fatal("no results")
		}
	}
}

// BenchmarkMatcher measures the raw pattern-matching substrate on the two
// data sets (sanity baseline for all experiments).
func BenchmarkMatcher(b *testing.B) {
	lg, dg := setup()
	b.Run("ldbc-q3", func(b *testing.B) {
		m := match.New(lg)
		q := workload.LDBCQuery3()
		for i := 0; i < b.N; i++ {
			if m.Count(q, 0) == 0 {
				b.Fatal("no results")
			}
		}
	})
	b.Run("dbpedia-q3", func(b *testing.B) {
		m := match.New(dg)
		q := workload.DBpediaQuery3()
		for i := 0; i < b.N; i++ {
			if m.Count(q, 0) == 0 {
				b.Fatal("no results")
			}
		}
	})
}
