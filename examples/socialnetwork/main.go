// Social-network debugging session: the three cardinality problems —
// why-empty, why-so-few, why-so-many — on the LDBC-like graph, mirroring
// the thesis' running scenario (holistic support, §3.1.3 / Fig. 3.1).
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.GenerateLDBC(repro.DefaultLDBC())
	engine := repro.NewEngine(g)
	fmt.Printf("social network: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// 1. Why-empty: travel fans living in a country that does not exist.
	q1 := repro.NewQuery()
	p := q1.AddVertex(map[string]repro.Predicate{"type": repro.EqS("person")})
	t := q1.AddVertex(map[string]repro.Predicate{"type": repro.EqS("tag"), "theme": repro.EqS("travel")})
	ci := q1.AddVertex(map[string]repro.Predicate{"type": repro.EqS("city")})
	co := q1.AddVertex(map[string]repro.Predicate{"type": repro.EqS("country"), "name": repro.EqS("Atlantis")})
	q1.AddEdge(p, t, []string{"hasInterest"}, nil)
	q1.AddEdge(p, ci, []string{"livesIn"}, nil)
	q1.AddEdge(ci, co, []string{"locatedIn"}, nil)
	report(engine, "why-empty: travel fans in Atlantis", q1, repro.AtLeastOne)

	// 2. Why-so-few: the user expects at least 100 recent class-of-2013
	// students, gets a handful.
	q2 := repro.NewQuery()
	s := q2.AddVertex(map[string]repro.Predicate{"type": repro.EqS("person")})
	u := q2.AddVertex(map[string]repro.Predicate{"type": repro.EqS("university")})
	q2.AddEdge(s, u, []string{"studyAt"}, map[string]repro.Predicate{"classYear": repro.EqN(2013)})
	report(engine, "why-so-few: class of exactly 2013", q2, repro.Interval{Lower: 100})

	// 3. Why-so-many: all knows pairs, but the analyst wants ≤ 50.
	q3 := repro.NewQuery()
	a := q3.AddVertex(map[string]repro.Predicate{"type": repro.EqS("person")})
	b := q3.AddVertex(map[string]repro.Predicate{"type": repro.EqS("person")})
	q3.AddEdge(a, b, []string{"knows"}, nil)
	report(engine, "why-so-many: all friendships", q3, repro.Interval{Lower: 1, Upper: 50})
}

func report(engine *repro.Engine, title string, q *repro.Query, expected repro.Interval) {
	rep, err := engine.Explain(q, repro.ExplainOptions{Expected: expected})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s ===\n%s\n\n", title, rep.Summary())
}
