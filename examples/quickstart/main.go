// Quickstart: build a tiny property graph, run a pattern query that comes
// back empty, and ask the engine why.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// A four-vertex graph: Anna works at TU Dresden, which is in Dresden;
	// Bert studies there.
	g := repro.NewGraph(4, 3)
	anna := g.AddVertex(repro.Attrs{"type": repro.S("person"), "name": repro.S("Anna")})
	bert := g.AddVertex(repro.Attrs{"type": repro.S("person"), "name": repro.S("Bert")})
	uni := g.AddVertex(repro.Attrs{"type": repro.S("university"), "name": repro.S("TU Dresden")})
	city := g.AddVertex(repro.Attrs{"type": repro.S("city"), "name": repro.S("Dresden")})
	g.AddEdge(anna, uni, "workAt", repro.Attrs{"sinceYear": repro.N(2003)})
	g.AddEdge(bert, uni, "studyAt", nil)
	g.AddEdge(uni, city, "locatedIn", nil)

	// The user asks: who works at a university located in Berlin?
	q := repro.NewQuery()
	p := q.AddVertex(map[string]repro.Predicate{"type": repro.EqS("person")})
	u := q.AddVertex(map[string]repro.Predicate{"type": repro.EqS("university")})
	c := q.AddVertex(map[string]repro.Predicate{"type": repro.EqS("city"), "name": repro.EqS("Berlin")})
	q.AddEdge(p, u, []string{"workAt"}, nil)
	q.AddEdge(u, c, []string{"locatedIn"}, nil)

	engine := repro.NewEngine(g)
	report, err := engine.Explain(q, repro.ExplainOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("-- why-query report --")
	fmt.Println(report.Summary())
	fmt.Println()
	fmt.Println("The differential graph pinpoints the failing constraint:")
	fmt.Println(report.Subgraph.Differential)
	if len(report.Rewritings) > 0 {
		fmt.Println("A repaired query that does deliver results:")
		fmt.Println(report.Rewritings[0].Query)
	}
}
