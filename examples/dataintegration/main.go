// Data-integration scenario (thesis §1, motivation): querying a
// heterogeneous, irregular-schema graph — the DBpedia-like data set — where
// over-constrained queries come back empty because attributes are missing
// for many entities. The example compares candidate rewritings on all three
// levels (syntactic / cardinality / result distance) before choosing one.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.GenerateDBpedia(repro.DefaultDBpedia())
	engine := repro.NewEngine(g)
	fmt.Printf("integrated entity graph: %d vertices, %d edges\n\n", g.NumVertices(), g.NumEdges())

	// Physicists with a Nobel prize born in Saxony: the award attribute is
	// sparsely populated (extraction gaps), so the query starves.
	q := repro.NewQuery()
	p := q.AddVertex(map[string]repro.Predicate{
		"type":  repro.EqS("person"),
		"field": repro.EqS("physics"),
		"award": repro.EqS("nobel"),
	})
	pl := q.AddVertex(map[string]repro.Predicate{"type": repro.EqS("place"), "region": repro.EqS("Saxony")})
	q.AddEdge(p, pl, []string{"bornIn"}, nil)

	rep, err := engine.Explain(q, repro.ExplainOptions{
		Expected:      repro.Interval{Lower: 5},
		MaxRewritings: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())

	fmt.Println("\ncomparing the proposed rewritings on the three levels:")
	fmt.Printf("%-4s %10s %8s %8s %8s\n", "#", "card", "synΔ", "cardΔ", "resΔ")
	for i, rw := range rep.Rewritings {
		fmt.Printf("%-4d %10d %8.3f %8d %8.3f\n", i+1, rw.Cardinality, rw.Syntactic, rw.CardinalityDistance, rw.ResultDistance)
	}
	if len(rep.Rewritings) > 0 {
		fmt.Println("\nchosen rewriting:")
		fmt.Println(rep.Rewritings[0].Query)
	}
}
