// User-steered debugging (§4.4 and §5.4): a user who refuses to give up the
// city constraint rates proposed rewritings; the preference model learns the
// protection and the next proposals avoid the protected element.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	g := repro.GenerateLDBC(repro.DefaultLDBC())
	engine := repro.NewEngine(g)
	m := engine.Matcher()
	st := engine.Stats()

	// The failed query: young students at universities in a city that has
	// none. The user cares about the city, not about the class year.
	build := func() *repro.Query {
		q := repro.NewQuery()
		p := q.AddVertex(map[string]repro.Predicate{"type": repro.EqS("person")})
		u := q.AddVertex(map[string]repro.Predicate{"type": repro.EqS("university")})
		c := q.AddVertex(map[string]repro.Predicate{"type": repro.EqS("city"), "population": repro.AtLeast(99000000)})
		q.AddEdge(p, u, []string{"studyAt"}, map[string]repro.Predicate{"classYear": repro.AtLeast(2013)})
		q.AddEdge(u, c, []string{"locatedIn"}, nil)
		return q
	}

	// User integration for the subgraph-based explanation: weight the
	// locatedIn edge so the traversal covers the user's focus first (§4.4).
	sub := repro.DiscoverMCS(m, st, build(), repro.MCSOptions{
		UseWCC:      true,
		EdgeWeights: map[int]float64{1: 10},
	})
	fmt.Printf("subgraph explanation: MCS %d edges, differential %d edges, rank %.2f\n\n",
		sub.MCS.NumEdges(), sub.Differential.NumEdges(),
		sub.Rank(map[int]float64{1: 10}, build()))

	// User integration for rewriting (§5.4): simulate ratings. The hidden
	// preference: never touch the city's population constraint.
	rw := repro.NewRelaxer(m, st)
	pm := repro.NewPreferenceModel(1.0)
	protected := repro.Target{Kind: 0 /* vertex */, ID: 2, Attr: "population"}
	accepts := func(ops []repro.Op) bool {
		for _, op := range ops {
			if op.Target() == protected {
				return false
			}
		}
		return true
	}
	for round := 1; round <= 5; round++ {
		out := rw.Rewrite(build(), repro.RelaxOptions{MaxSolutions: 1, AllowTopology: true, Prefs: pm})
		if len(out.Solutions) == 0 {
			log.Fatal("no rewriting found")
		}
		sol := out.Solutions[0]
		if accepts(sol.Ops) {
			fmt.Printf("round %d: accepted %v (cardinality %d)\n", round, sol.Ops, sol.Cardinality)
			fmt.Println("\naccepted rewriting:")
			fmt.Println(sol.Query)
			return
		}
		fmt.Printf("round %d: rejected %v (touches the protected city constraint)\n", round, sol.Ops)
		pm.Rate(sol, 0)
	}
	fmt.Println("no acceptable rewriting within 5 rounds")
}
